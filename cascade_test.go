package squigglefilter

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"squigglefilter/internal/genome"
	"squigglefilter/internal/pore"
	"squigglefilter/internal/squiggle"
)

// cascadeFixture builds an n-target cascade panel of random genomes and a
// simulator for reads against it. Every target gets the default schedule;
// genomes are genomeBases long.
func cascadeFixture(t testing.TB, rng *rand.Rand, n, genomeBases int, cc CascadeConfig) (*CascadePanel, []*genome.Genome, *squiggle.Simulator) {
	t.Helper()
	genomes := make([]*genome.Genome, n)
	cfgs := make([]DetectorConfig, n)
	for i := range cfgs {
		genomes[i] = &genome.Genome{
			Name: fmt.Sprintf("target-%02d", i),
			Seq:  genome.Random(rng, genomeBases),
		}
		cfgs[i] = DetectorConfig{Name: genomes[i].Name, Sequence: genomes[i].Seq.String(), Workers: 1}
	}
	cp, err := NewCascadePanel(cfgs, cc)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := squiggle.NewSimulator(pore.DefaultModel(), squiggle.DefaultConfig(), rng.Int63())
	if err != nil {
		t.Fatal(err)
	}
	return cp, genomes, sim
}

// TestCascadeNeverDropsExactWinner is the cascade's core correctness
// contract: over random panels, read pools, and decimation factors, any
// read the exact panel attributes to a target must be attributed to the
// same target by the cascade — the coarse tier never drops the exact
// winner. (Winner preservation implies the winner survived the cut; the
// per-target verdict identity on survivors is pinned at the engine
// layer.)
func TestCascadeNeverDropsExactWinner(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	host := &genome.Genome{Name: "host", Seq: genome.Random(rng, 50000)}
	attributed := 0
	for trial, d := range []int{4, 8, 16} {
		cp, genomes, sim := cascadeFixture(t, rng, 8, 800, CascadeConfig{
			Decimation: d,
			TopK:       3,
		})
		exact := cp.Panel()

		var reads [][]int16
		for _, gi := range []int{0, 3, 7} { // present targets; the rest are absent
			for r := 0; r < 2; r++ {
				read := sim.ReadFrom(genomes[gi], rng.Intn(300), 700, rng.Intn(2) == 1)
				reads = append(reads, read.Samples)
			}
		}
		for r := 0; r < 2; r++ {
			read := sim.ReadFrom(host, rng.Intn(40000), 900, rng.Intn(2) == 1)
			reads = append(reads, read.Samples)
		}

		for i, read := range reads {
			want := exact.Classify(read)
			sess, err := cp.NewSession(PrunePolicy{})
			if err != nil {
				t.Fatal(err)
			}
			got, _ := sess.Stream(read, 1+rng.Intn(900))
			if want.Best < 0 {
				continue // no exact winner to preserve
			}
			attributed++
			if got.Best != want.Best {
				t.Errorf("trial %d (decimation %d) read %d: cascade attributed %q (Best %d), exact panel %q (Best %d); survivors %v",
					trial, d, i, got.Target, got.Best, want.Target, want.Best, sess.Survivors())
			}
		}
	}
	if attributed == 0 {
		t.Fatal("no read was attributed by the exact panel; the property was never exercised")
	}
}

// TestCascadeTopKIdentity: with TopK >= the panel size the coarse tier is
// bypassed and the streamed cascade verdict is bit-identical to one-shot
// Panel.Classify on the shared exact tier — the cascade degenerates to
// the plain panel exactly.
func TestCascadeTopKIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	host := &genome.Genome{Name: "host", Seq: genome.Random(rng, 30000)}
	const n = 5
	cp, genomes, sim := cascadeFixture(t, rng, n, 700, CascadeConfig{TopK: n})
	exact := cp.Panel()

	var reads [][]int16
	for gi := 0; gi < n; gi += 2 {
		read := sim.ReadFrom(genomes[gi], rng.Intn(200), 600, false)
		reads = append(reads, read.Samples)
	}
	reads = append(reads,
		sim.ReadFrom(host, rng.Intn(20000), 800, true).Samples,
		nil, // zero-length read: both sides must report all-Continue
	)

	for i, read := range reads {
		want := exact.Classify(read)
		got := cp.Classify(read)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("read %d: one-shot cascade diverged:\ngot  %+v\nwant %+v", i, got, want)
		}
		sess, err := cp.NewSession(PrunePolicy{})
		if err != nil {
			t.Fatal(err)
		}
		streamed, _ := sess.Stream(read, 1+rng.Intn(700))
		if !reflect.DeepEqual(streamed, want) {
			t.Errorf("read %d: streamed cascade diverged:\ngot  %+v\nwant %+v", i, streamed, want)
		}
		if sess.CoarseDPSamples() != 0 {
			t.Errorf("read %d: coarse tier ran %d DP samples despite TopK >= panel size", i, sess.CoarseDPSamples())
		}
	}
}

// TestCascadeSavesDP: at defaults on an unambiguous read, the cascade's
// total DP cells come in far below the exact panel's — the point of the
// coarse tier.
func TestCascadeSavesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	cp, genomes, sim := cascadeFixture(t, rng, 128, 600, CascadeConfig{})
	read := sim.ReadFrom(genomes[4], 0, 700, false)

	sess, err := cp.NewSession(PrunePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := sess.Stream(read.Samples, 400)
	if v.Best != 4 {
		t.Fatalf("cascade attributed read to %d (%s), want 4", v.Best, v.Target)
	}

	exact, err := cp.Panel().NewSession(PrunePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := exact.Stream(read.Samples, 400); !ok && !exact.Decided() {
		t.Fatal("exact panel never decided")
	}
	// Exact cells = per-target DP samples x the reference length (uniform
	// here: every target genome is the same size).
	det, err := NewDetector(DetectorConfig{Name: "probe", Sequence: genomes[0].Seq.String()})
	if err != nil {
		t.Fatal(err)
	}
	refLen := int64(det.ReferenceSamples())
	exactCells := exact.DPSamples() * refLen
	if sess.DPCells()*4 > exactCells {
		t.Errorf("cascade DP cells %d not under 1/4 of exact %d", sess.DPCells(), exactCells)
	}
}
