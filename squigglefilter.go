// Package squigglefilter is a from-scratch reproduction of SquiggleFilter
// (Dunn, Sadasivan, et al., MICRO 2021): a hardware-accelerated
// subsequence-DTW filter that classifies raw nanopore signal ("squiggles")
// against a target virus's reference genome so that non-target reads can
// be ejected with the MinION's Read Until feature — without ever running
// a basecaller.
//
// This package is the public API. A Detector is programmed once with a
// reference genome and then classifies raw read prefixes:
//
//	det, err := squigglefilter.NewDetector(squigglefilter.DetectorConfig{
//		Name:     "SARS-CoV-2",
//		Sequence: refSeq, // ACGT string
//	})
//	verdict := det.Classify(rawSamples) // 10-bit ADC samples
//	if verdict.Decision == squigglefilter.Reject {
//		// tell the sequencer to eject the read
//	}
//
// Classification is served by interchangeable back-ends behind one
// interface (internal/engine): the software sDTW filter (Classify,
// ClassifyBatch), the cycle-accurate accelerator model (ClassifyHW), and
// the calibrated GPU baseline (ClassifyGPU). All three share a single
// normalization and staging policy, so their costs and decisions are
// bit-identical; they differ only in performance accounting. ClassifyBatch
// shards reads across a worker pool the way the device shards reads across
// tiles, and a Panel classifies one read against several reference genomes
// at once.
//
// For live Read Until, NewSession classifies incrementally: feed raw
// signal chunk by chunk as the sequencer delivers it and the verdict is
// emitted the moment a stage boundary decides, bit-identical to one-shot
// Classify on the same signal:
//
//	sess := det.NewSession()
//	for chunk := range channelDeliveries {
//		if v, done := sess.Feed(chunk); done {
//			// v.Decision arrived mid-read; eject or keep sequencing
//			break
//		}
//	}
//	v := sess.Finalize() // read ended before a boundary decided
//
// The heavy lifting lives in internal packages: the integer sDTW engine
// (internal/sdtw), the back-end interface and concurrent pipeline
// (internal/engine), the cycle-accurate accelerator model (internal/hw),
// the pore model and reference-squiggle construction (internal/pore), and
// the Read Until runtime model (internal/readuntil). See DESIGN.md for the
// system inventory and EXPERIMENTS.md for the paper reproduction.
package squigglefilter

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"squigglefilter/internal/engine"
	"squigglefilter/internal/genome"
	"squigglefilter/internal/gpu"
	"squigglefilter/internal/hw"
	"squigglefilter/internal/metrics"
	"squigglefilter/internal/pore"
	"squigglefilter/internal/sdtw"
)

// Decision is a Read Until verdict.
type Decision int

// Verdict decisions.
const (
	// Continue: not enough signal yet; keep sequencing and ask again.
	Continue Decision = iota
	// Accept: the read matches the target; sequence it to completion.
	Accept
	// Reject: eject the read from the pore.
	Reject
)

// String names the decision.
func (d Decision) String() string { return sdtw.Decision(d).String() }

// Stage is one threshold point of the (optionally multi-stage) filter:
// after PrefixSamples raw samples, reads with alignment cost above
// Threshold are ejected; at the last stage, reads at or below it are
// accepted.
type Stage struct {
	PrefixSamples int
	Threshold     int32
}

// DetectorConfig programs a Detector.
type DetectorConfig struct {
	// Name labels the target (reports only).
	Name string
	// Sequence is the target reference genome as an ACGT string.
	// Genomes up to 50 kb (double-stranded equivalent) fit one tile's
	// 100 KB reference buffer, which covers almost every epidemic virus
	// (paper Figure 10); longer genomes — up to hw.NumTiles x that — are
	// sharded across cooperating tiles automatically (the multi-tile
	// group exchanges halo cells through DRAM, so they cost memory
	// traffic, not latency).
	Sequence string
	// Stages is the filter schedule. Empty means a single stage at the
	// paper's default 2,000-sample prefix with a threshold calibrated as
	// DefaultThresholdPerSample per prefix sample.
	Stages []Stage
	// MatchBonus / BonusCap tune the translocation-rate compensation
	// (paper Section 4.7). Zero values select the paper defaults; set
	// MatchBonus to a negative value to disable the bonus.
	MatchBonus int32
	BonusCap   int32
	// Workers sizes ClassifyBatch's worker pool (back-end instances reads
	// are sharded across). Zero means runtime.NumCPU().
	Workers int
	// Shards splits the reference dimension of every classification into
	// this many shards (0 or 1 = unsharded). The software paths schedule
	// one read's shards across the Workers pool — per-read latency drops
	// with the shard count, not just batch throughput — and ClassifyHW
	// gangs up to hw.NumTiles tiles cooperatively. Sharded verdicts are
	// bit-identical to unsharded ones by construction; the GPU baseline
	// models whole-kernel launches and ignores Shards.
	Shards int
	// Kernel selects the software DP cell layout: KernelInt32 (default,
	// the reference 32-bit cells) or KernelInt16 (packed saturating
	// 16-bit cells, same verdicts at under half the row traffic). The
	// hardware and GPU models are unaffected.
	Kernel Kernel
	// Realtime, when set (ClockHz > 0), puts the detector's scheduler in
	// deadline mode: every DP task carries a decision deadline of one
	// chunk-delivery period, the earliest-deadline task runs first, and
	// SchedStats counts deadline misses — the provisioning question
	// ("does this back-end keep up with the sequencer?") becomes a
	// measured output. The zero value keeps best-effort scheduling.
	Realtime RealtimeConfig
}

// RealtimeConfig provisions the detector for live Read Until service.
type RealtimeConfig struct {
	// Channels records the number of concurrently delivering sequencer
	// channels the detector is provisioned for (512 on a MinION). It is
	// a provisioning label surfaced by Detector.Realtime() for reports
	// and tooling defaults; scheduling itself is governed by ClockHz
	// (and verdicts are never affected).
	Channels int
	// ClockHz is the per-channel raw sample rate (~4,000 on a MinION).
	// With the standard ~400-sample delivery granularity it sets the
	// decision deadline window: a chunk's DP should finish before the
	// next chunk lands, i.e. within 400/ClockHz seconds.
	ClockHz float64
}

// realtimeChunkSamples is the per-delivery granularity the deadline
// window assumes: ~0.1 s of signal at the MinION's ~4 kHz channel clock,
// matching the Read Until API's delivery cadence.
const realtimeChunkSamples = 400

// window converts the config to the scheduler's deadline window
// (0 = best-effort).
func (rc RealtimeConfig) window() time.Duration {
	if rc.ClockHz <= 0 {
		return 0
	}
	return time.Duration(realtimeChunkSamples / rc.ClockHz * float64(time.Second))
}

// DefaultThresholdPerSample is a robust default ejection threshold in
// fixed-point cost units per prefix sample; the paper found a static
// threshold "relatively robust across species and sequencing runs".
const DefaultThresholdPerSample = 3

// Kernel selects the software classifier's DP cell layout.
type Kernel int

const (
	// KernelInt32 is the reference layout: 32-bit costs and run counters.
	KernelInt32 Kernel = iota
	// KernelInt16 is the packed saturating layout: 16-bit costs and 8-bit
	// run counters — under half the DP-row memory traffic per cell, with
	// verdicts identical to KernelInt32 on every schedule it admits. It
	// requires every stage threshold to sit at or below
	// sdtw.Sat16MaxThreshold (about 26,600 cost units — an order of
	// magnitude above any calibrated ejection threshold); NewDetector
	// rejects hotter schedules.
	KernelInt16
)

// String names the kernel as back-ends and tools report it.
func (k Kernel) String() string { return engine.KernelKind(k).String() }

// Detector classifies raw nanopore read prefixes against one target
// genome. It is safe for concurrent use.
type Detector struct {
	name     string
	ref      *pore.Reference
	filter   *sdtw.Filter
	cfg      sdtw.IntConfig
	stages   []sdtw.Stage
	kernel   Kernel
	realtime RealtimeConfig

	sw     engine.Backend   // direct software path (concurrency-safe)
	gpu    engine.Backend   // calibrated GPU baseline (concurrency-safe)
	swPipe *engine.Pipeline // batch worker pool over software instances
	hwPipe *engine.Pipeline // hardware tiles; pipeline serializes access
}

// NewDetector builds and programs a detector.
func NewDetector(cfg DetectorConfig) (*Detector, error) {
	seq, err := genome.FromString(cfg.Sequence)
	if err != nil {
		return nil, fmt.Errorf("squigglefilter: %w", err)
	}
	if len(seq) < 100 {
		return nil, fmt.Errorf("squigglefilter: reference of %d bases is too short to filter against", len(seq))
	}
	g := &genome.Genome{Name: cfg.Name, Seq: seq}
	ref := pore.DefaultModel().BuildReference(g)

	icfg := sdtw.DefaultIntConfig()
	switch {
	case cfg.MatchBonus < 0:
		icfg = sdtw.IntConfig{}
	case cfg.MatchBonus > 0:
		icfg.MatchBonus = cfg.MatchBonus
	}
	if cfg.BonusCap > 0 {
		icfg.BonusCap = cfg.BonusCap
	}

	stages := cfg.Stages
	if len(stages) == 0 {
		stages = []Stage{{PrefixSamples: 2000, Threshold: 2000 * DefaultThresholdPerSample}}
	}
	internalStages := make([]sdtw.Stage, len(stages))
	for i, s := range stages {
		internalStages[i] = sdtw.Stage{PrefixSamples: s.PrefixSamples, Threshold: s.Threshold}
	}
	filter, err := sdtw.NewFilter(ref.Int8, icfg, internalStages)
	if err != nil {
		return nil, fmt.Errorf("squigglefilter: %w", err)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	kind := engine.KernelKind(cfg.Kernel)
	// The one-shot software back-end uses the serial cache-blocked sharded
	// path; the pipeline below layers intra-read parallelism on top.
	swBackend, err := engine.NewSoftwareShardedKernel(ref.Int8, icfg, shards, kind)
	if err != nil {
		return nil, fmt.Errorf("squigglefilter: %w", err)
	}
	gpuBackend, err := engine.NewGPU(ref.Int8, icfg, gpu.TitanXP())
	if err != nil {
		return nil, fmt.Errorf("squigglefilter: %w", err)
	}
	swPipe, err := engine.NewPipeline(func() (engine.Backend, error) {
		return engine.NewSoftwareKernel(ref.Int8, icfg, kind)
	}, workers, internalStages)
	if err != nil {
		return nil, fmt.Errorf("squigglefilter: %w", err)
	}
	if err := swPipe.SetShards(shards); err != nil {
		return nil, fmt.Errorf("squigglefilter: %w", err)
	}
	// One device per detector, exactly as the single-target device maps
	// one read to one tile — or, for references beyond one tile's buffer
	// and for Shards > 1, to a cooperating tile group. The pipeline grants
	// exclusive access, keeping ClassifyHW safe for concurrent use.
	hwTiles := 0 // auto-size to the reference
	if shards > 1 {
		hwTiles = shards
		if hwTiles > hw.NumTiles {
			hwTiles = hw.NumTiles
		}
		if need := (ref.Len() + hw.RefBufferBytes - 1) / hw.RefBufferBytes; hwTiles < need {
			hwTiles = 0 // fall back to auto when the reference needs more
		}
	}
	hwPipe, err := engine.NewPipeline(func() (engine.Backend, error) {
		return engine.NewHardwareTiles(ref.Int8, icfg, hwTiles)
	}, 1, internalStages)
	if err != nil {
		return nil, fmt.Errorf("squigglefilter: %w", err)
	}
	if w := cfg.Realtime.window(); w > 0 {
		swPipe.SetRealtime(w)
		hwPipe.SetRealtime(w)
	}
	return &Detector{
		name:     cfg.Name,
		ref:      ref,
		filter:   filter,
		cfg:      icfg,
		stages:   internalStages,
		kernel:   cfg.Kernel,
		realtime: cfg.Realtime,
		sw:       swBackend,
		gpu:      gpuBackend,
		swPipe:   swPipe,
		hwPipe:   hwPipe,
	}, nil
}

// Name returns the programmed target's name.
func (d *Detector) Name() string { return d.name }

// ReferenceSamples returns the reference squiggle length (both strands) —
// the R in the paper's ~2R-cycle classification latency.
func (d *Detector) ReferenceSamples() int { return d.ref.Len() }

// Workers returns the size of ClassifyBatch's worker pool.
func (d *Detector) Workers() int { return d.swPipe.Workers() }

// Shards returns the resolved reference shard count of the software
// classification paths (1 when unsharded).
func (d *Detector) Shards() int { return d.swPipe.Shards() }

// Kernel returns the software DP cell layout the detector classifies
// with.
func (d *Detector) Kernel() Kernel { return d.kernel }

// Realtime returns the configured real-time provisioning (zero when the
// detector schedules best-effort).
func (d *Detector) Realtime() RealtimeConfig { return d.realtime }

// SchedStats summarizes the detector's software scheduler: every
// Classify/ClassifyBatch read, live Session stage extension, and sharded
// (shard, block) task dispatches through one earliest-deadline-first
// queue, and this is its accounting — the measured side of the paper's
// "keeps up with the sequencer" claim.
type SchedStats struct {
	// Instances is the back-end pool size tasks are scheduled over.
	Instances int
	// Completed counts finished DP tasks; Late those that finished after
	// their real-time deadline (always 0 without DetectorConfig.Realtime).
	Completed, Late int64
	// Utilization is the fraction of pool capacity spent running DP.
	Utilization float64
	// LatencyP50/P90/P99 are submit-to-finish decision latency
	// percentiles over recent tasks (queueing included).
	LatencyP50, LatencyP90, LatencyP99 time.Duration
}

// SchedStats snapshots the software pipeline's scheduler accounting.
func (d *Detector) SchedStats() SchedStats {
	st := d.swPipe.SchedStats()
	secs := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	return SchedStats{
		Instances:   st.Instances,
		Completed:   st.Completed,
		Late:        st.Late,
		Utilization: st.Utilization(),
		LatencyP50:  secs(st.Latency.Median),
		LatencyP90:  secs(st.Latency.P90),
		LatencyP99:  secs(st.Latency.P99),
	}
}

// Verdict is the outcome of classifying one read prefix.
type Verdict struct {
	Decision Decision
	// Cost is the sDTW alignment cost at the deciding stage (lower is
	// more target-like; the match bonus can make true matches negative).
	Cost int32
	// SamplesUsed is how many raw samples were consumed before the
	// decision — what Read Until turns into saved sequencing time.
	SamplesUsed int
}

func verdictFrom(r engine.Result) Verdict {
	return Verdict{Decision: Decision(r.Decision), Cost: r.Cost, SamplesUsed: r.SamplesUsed}
}

// Classify runs the software filter over a read's raw 10-bit samples.
func (d *Detector) Classify(samples []int16) Verdict {
	return verdictFrom(d.sw.Classify(samples, d.stages))
}

// Session is an incremental classification of one read: raw signal
// arrives in arbitrary chunk sizes as the sequencer delivers it, and the
// verdict is emitted the moment a stage boundary decides — the live Read
// Until loop, without waiting for the full prefix to be buffered by the
// caller. Streamed verdicts are bit-identical to one-shot Classify on the
// same signal.
//
// Use one Session per read, from one goroutine; any number of concurrent
// sessions may be open at once (their DP work multiplexes over the
// detector's worker pool).
type Session struct {
	s *engine.Session
}

// NewSession starts an incremental classification of one read.
func (d *Detector) NewSession() *Session {
	s, err := d.swPipe.NewSession()
	if err != nil {
		// Unreachable: the detector's pipeline is engine-built and its
		// schedule was validated at construction.
		panic("squigglefilter: " + err.Error())
	}
	return &Session{s: s}
}

// Feed appends a chunk of raw samples and returns the verdict so far plus
// whether the read is decided (Accept or Reject). Once decided, further
// chunks are ignored.
func (s *Session) Feed(chunk []int16) (Verdict, bool) {
	r, done := s.s.Feed(chunk)
	return verdictFrom(r), done
}

// Finalize signals that the read ended: any signal short of the next
// stage boundary is decided as the final stage, exactly as Classify
// decides a short read. Finalize is idempotent.
func (s *Session) Finalize() Verdict {
	return verdictFrom(s.s.Finalize())
}

// Stream feeds a whole read in chunkSamples-sized deliveries (<= 0
// feeds it at once), stopping at the first decision, then finalizes.
// The returned bool reports whether a stage decided before the signal
// ended — the only case Read Until can still eject the read.
func (s *Session) Stream(samples []int16, chunkSamples int) (Verdict, bool) {
	r, decided := s.s.Stream(samples, chunkSamples)
	return verdictFrom(r), decided
}

// Decided reports whether the session has reached an Accept or Reject.
func (s *Session) Decided() bool { return s.s.Decided() }

// ClassifyBatch classifies a batch of reads concurrently, sharding them
// across the detector's worker pool (DetectorConfig.Workers back-end
// instances). Results are in input order and identical to calling Classify
// on each read serially.
func (d *Detector) ClassifyBatch(reads [][]int16) []Verdict {
	// The background context is never cancelled, so the error is
	// structurally nil.
	res, _ := d.swPipe.ClassifyBatch(context.Background(), reads)
	out := make([]Verdict, len(res))
	for i, r := range res {
		out[i] = verdictFrom(r)
	}
	return out
}

// Cost computes the raw alignment cost of a prefix without thresholding —
// useful for calibration and diagnostics.
func (d *Detector) Cost(samples []int16, prefixSamples int) int32 {
	return d.filter.CostAt(samples, prefixSamples).Cost
}

// HardwareVerdict additionally reports accelerator cycle statistics from
// the cycle-accurate tile model (bit-identical to Classify's costs).
type HardwareVerdict struct {
	Verdict
	Cycles    int64
	DRAMBytes int64
	Latency   time.Duration
}

// ClassifyHW classifies on the cycle-accurate systolic-array model,
// evaluating the full stage schedule exactly as Classify does (the DP row
// parks in DRAM between stages, which is what DRAMBytes accounts).
func (d *Detector) ClassifyHW(samples []int16) HardwareVerdict {
	r := d.hwPipe.Classify(samples)
	return HardwareVerdict{
		Verdict:   verdictFrom(r),
		Cycles:    r.Stats.Cycles,
		DRAMBytes: r.Stats.DRAMBytes,
		Latency:   r.Stats.Latency,
	}
}

// GPUVerdict reports the calibrated GPU baseline's modeled kernel latency
// alongside the (bit-identical) verdict.
type GPUVerdict struct {
	Verdict
	// KernelLatency is the modeled time the device's sDTW kernel takes for
	// this read under Read Until's small-batch regime (Titan XP envelope).
	KernelLatency time.Duration
}

// ClassifyGPU classifies on the GPU-baseline model (paper Table 3's
// Titan XP): same decisions and costs as Classify, with the latency a GPU
// software pipeline would pay.
func (d *Detector) ClassifyGPU(samples []int16) GPUVerdict {
	r := d.gpu.Classify(samples, d.stages)
	return GPUVerdict{Verdict: verdictFrom(r), KernelLatency: r.Stats.Latency}
}

// CalibrateThreshold sweeps thresholds over labelled raw reads and returns
// the threshold maximizing F1 at the given prefix, plus the achieved
// true/false positive rates. Use a few dozen known target and non-target
// reads from a calibration run.
func (d *Detector) CalibrateThreshold(targetReads, hostReads [][]int16, prefixSamples int) (threshold int32, tpr, fpr float64) {
	var t, h []float64
	for _, r := range targetReads {
		//lint:allow floatcost offline ROC calibration: the float copies feed metrics.BestF1 sorting; the returned threshold itself stays int32
		t = append(t, float64(d.filter.CostAt(r, prefixSamples).Cost))
	}
	for _, r := range hostReads {
		//lint:allow floatcost offline ROC calibration: the float copies feed metrics.BestF1 sorting; the returned threshold itself stays int32
		h = append(h, float64(d.filter.CostAt(r, prefixSamples).Cost))
	}
	best := metrics.BestF1(t, h)
	return int32(best.Threshold), best.TPR, best.FPR
}

// Performance summarizes the accelerator's analytical envelope for this
// detector's reference (paper Section 7.1).
type Performance struct {
	LatencyPerRead       time.Duration
	TileSamplesPerSec    float64
	DeviceSamplesPerSec  float64
	SequencerHeadroom    float64 // vs the MinION's 2.05 M samples/s
	AreaMM2, PowerW      float64
	DRAMBandwidthPerTile float64
}

// Performance reports the hardware model's numbers at the default
// 2,000-sample prefix.
func (d *Detector) Performance() Performance {
	const minionSamplesPerSec = 2.048e6
	refLen := d.ref.Len()
	return Performance{
		LatencyPerRead:       hw.Latency(2000, refLen),
		TileSamplesPerSec:    hw.TileThroughput(2000, refLen),
		DeviceSamplesPerSec:  hw.DeviceThroughput(2000, refLen, hw.NumTiles),
		SequencerHeadroom:    hw.ScalabilityHeadroom(2000, refLen, minionSamplesPerSec),
		AreaMM2:              hw.ASICAreaMM2(hw.NumTiles),
		PowerW:               hw.ASICPowerW(hw.NumTiles),
		DRAMBandwidthPerTile: hw.MultiStageDRAMBandwidth(),
	}
}
