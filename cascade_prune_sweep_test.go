package squigglefilter

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"squigglefilter/internal/engine"
	"squigglefilter/internal/normalize"
	"squigglefilter/internal/squiggle"
)

// TestCascadePruneSweep regenerates EXPERIMENTS.md's pruning-efficiency
// table: for each panel size and TopK it streams a read pool through the
// cascade and reports the coarse DP cells the bounded tier actually paid
// against the exhaustive tier's analytic cell count (every hypothesis's
// decimated query length x the summed decimated reference lengths), plus
// the fraction of per-target scorings the admissible bound abandoned.
// It is a documentation generator, not a regression gate — run it with
//
//	CASCADE_PRUNE_SWEEP=1 go test -run TestCascadePruneSweep -v -timeout 30m .
func TestCascadePruneSweep(t *testing.T) {
	if os.Getenv("CASCADE_PRUNE_SWEEP") == "" {
		t.Skip("set CASCADE_PRUNE_SWEEP=1 to regenerate the EXPERIMENTS.md pruning table")
	}
	const reads = 12
	for _, n := range []int{8, 64, 256, 1000} {
		rng := rand.New(rand.NewSource(4242))
		for _, k := range []int{4, 8, 16} {
			cp, genomes, sim := cascadeFixture(t, rng, n, 800, CascadeConfig{TopK: k})
			cc := cp.Config()

			// The exhaustive coarse tier's cells: rebuild the coarse
			// references exactly as NewCascadePanel does and charge every
			// hypothesis's full query against every one of them.
			cfgs := make([]DetectorConfig, n)
			for i, g := range genomes {
				cfgs[i] = DetectorConfig{Name: g.Name, Sequence: g.Seq.String(), Workers: 1}
			}
			_, _, dets, err := buildTargets(cfgs)
			if err != nil {
				t.Fatal(err)
			}
			var totalCoarseLen int64
			for _, det := range dets {
				totalCoarseLen += int64(len(normalize.QuantizeSlice(squiggle.Decimate(det.ref.Float, cc.Decimation))))
			}

			var cells, pruned, scorings, exhaustive int64
			attributed := 0
			for r := 0; r < reads; r++ {
				src := []int{0, 1, 2, 3}[r%4]
				read := sim.ReadFrom(genomes[src], 50+r*13, 700, r%2 == 1)
				sess, err := cp.NewSession(PrunePolicy{})
				if err != nil {
					t.Fatal(err)
				}
				v, _ := sess.Stream(read.Samples, 400)
				if v.Best == src {
					attributed++
				}
				cells += sess.CoarseDPCells()
				pruned += sess.CoarsePruned()
				scorings += sess.CoarseScorings()
				prefix := read.Samples
				if len(prefix) > cc.CoarsePrefix {
					prefix = prefix[:cc.CoarsePrefix]
				}
				dw := engine.DefaultQueryDwell
				for _, dwell := range []int{dw - 2, dw, dw + 2} {
					qlen := int64(len(squiggle.DecimateInt16(prefix, cc.Decimation*dwell)))
					exhaustive += qlen * totalCoarseLen
				}
			}
			fmt.Printf("N=%4d k=%2d  coarse cells/read %9.0f  exhaustive %9.0f  saved %5.1f%%  pruned-frac %.3f  source-hit %d/%d\n",
				n, k,
				float64(cells)/reads, float64(exhaustive)/reads,
				100*(1-float64(cells)/float64(exhaustive)),
				float64(pruned)/float64(scorings),
				attributed, reads)
			cp.Close()
		}
	}
}
