package squigglefilter

import (
	"context"
	"fmt"

	"squigglefilter/internal/engine"
	"squigglefilter/internal/normalize"
	"squigglefilter/internal/squiggle"
)

// CascadeConfig parameterizes the coarse filtering tier of a cascade
// panel. The zero value selects the defaults the EXPERIMENTS.md sweeps
// justify: 8× decimation, 8 survivors per dwell hypothesis, zero margin,
// and a 6,000-sample coarse prefix.
type CascadeConfig struct {
	// Decimation is the mean-pooling factor applied to the reference
	// squiggles and the read prefix before coarse scoring (0 = default 8;
	// 1 scores at full rate). Coarse DP per target shrinks by Decimation².
	Decimation int
	// TopK is how many coarse survivors each dwell hypothesis contributes
	// to the exact panel (0 = default 8); the survivors are the union of
	// the three hypotheses' top-k sets, so up to 3*TopK targets run the
	// exact tier. TopK >= the panel size disables the coarse tier: the
	// cascade is then bit-identical to a plain Panel.
	TopK int
	// Margin widens the survivor cut: targets whose coarse cost is within
	// Margin per decimated sample of a hypothesis's k-th best also
	// survive. Zero (the default) still keeps exact ties with the k-th —
	// ties are never split arbitrarily.
	Margin int
	// CoarsePrefix is how many raw samples buffer before the coarse tier
	// commits to survivors (0 = default 6,000).
	CoarsePrefix int
}

// CascadePanel classifies reads against a large panel — hundreds to
// thousands of target genomes — through a two-tier cascade: a coarse tier
// scores a decimated read prefix against every target's decimated
// reference (cheap: the per-target DP shrinks by Decimation²) under
// three read-rate hypotheses, and only the union of each hypothesis's
// top-k survivors runs the exact Panel machinery, cross-target pruning
// included. The correctness contract, property-tested in
// TestCascadeNeverDropsExactWinner, is that the cascade keeps the target
// the exact panel would have attributed the read to; with TopK >= the
// panel size it is bit-identical to Panel.Classify. A CascadePanel is
// safe for concurrent use.
type CascadePanel struct {
	cascade *engine.Cascade
	// exact is the full exact-tier panel over the same detectors and
	// pipelines — what the cascade degenerates to with TopK >= size.
	exact *Panel
}

// NewCascadePanel programs one detector per config and assembles the
// two-tier cascade: each target's coarse reference is its reference
// squiggle decimated by cc.Decimation, re-normalized, and re-quantized,
// so coarse costs are in the same fixed-point units as exact ones.
func NewCascadePanel(cfgs []DetectorConfig, cc CascadeConfig) (*CascadePanel, error) {
	if cc.Margin < 0 {
		return nil, fmt.Errorf("squigglefilter: cascade margin must be non-negative, got %d", cc.Margin)
	}
	targets, names, dets, err := buildTargets(cfgs)
	if err != nil {
		return nil, err
	}
	panel, err := engine.NewPanel(targets)
	if err != nil {
		return nil, fmt.Errorf("squigglefilter: %w", err)
	}
	ecc := engine.CascadeConfig{
		Decimation:   cc.Decimation,
		TopK:         cc.TopK,
		Margin:       int64(cc.Margin),
		CoarsePrefix: cc.CoarsePrefix,
	}
	d := ecc.Decimation
	if d == 0 {
		d = engine.DefaultDecimation
	}
	coarse := make([][]int8, len(dets))
	for i, det := range dets {
		coarse[i] = normalize.QuantizeSlice(squiggle.Decimate(det.ref.Float, d))
	}
	// Every detector shares the panel's cost configuration for coarse
	// scoring; per-target MatchBonus overrides only shape the exact tier,
	// where their stage thresholds were calibrated.
	cascade, err := engine.NewCascade(panel, coarse, dets[0].cfg, ecc)
	if err != nil {
		return nil, fmt.Errorf("squigglefilter: %w", err)
	}
	return &CascadePanel{
		cascade: cascade,
		exact:   &Panel{panel: panel, names: names},
	}, nil
}

// Targets returns the panel's target names in order.
func (cp *CascadePanel) Targets() []string { return cp.exact.Targets() }

// Panel returns the exact tier as a plain Panel over the same detectors
// and pipelines — the baseline a cascade run is measured against.
func (cp *CascadePanel) Panel() *Panel { return cp.exact }

// Config returns the resolved (defaulted) cascade configuration.
func (cp *CascadePanel) Config() CascadeConfig {
	c := cp.cascade.Config()
	return CascadeConfig{
		Decimation:   c.Decimation,
		TopK:         c.TopK,
		Margin:       int(c.Margin),
		CoarsePrefix: c.CoarsePrefix,
	}
}

// Classify runs one read through the cascade in one shot: coarse tier on
// the buffered prefix, exact tier on the survivors. Targets the coarse
// tier rejected report Reject with zero samples used.
func (cp *CascadePanel) Classify(samples []int16) PanelVerdict {
	return cp.exact.verdictFrom(cp.cascade.Classify(samples))
}

// CascadeSession is the incremental form of CascadePanel.Classify: raw
// chunks buffer until the coarse prefix completes, the coarse tier picks
// survivors, and the buffered signal replays into the survivor panel —
// verdicts from then on are bit-identical to a PanelSession over just the
// survivors. Use one per read, from one goroutine.
type CascadeSession struct {
	cp *CascadePanel
	s  *engine.CascadeSession
}

// NewSession starts an incremental cascade classification of one read
// under the given exact-tier pruning policy.
func (cp *CascadePanel) NewSession(prune PrunePolicy) (*CascadeSession, error) {
	return cp.NewSessionContext(context.Background(), prune)
}

// NewSessionContext is NewSession bound to a context: both tiers wait for
// back-end instances under ctx, so cancelling it mid-read unwinds a
// session stuck behind a saturated scheduler instead of blocking. The
// session then reports the cause through Err and its verdict stays
// undecided, like an abandoned read. A nil ctx means context.Background().
func (cp *CascadePanel) NewSessionContext(ctx context.Context, prune PrunePolicy) (*CascadeSession, error) {
	s, err := cp.cascade.NewSessionContext(ctx, engine.PrunePolicy{Enabled: prune.Enabled, MarginPerSample: int64(prune.MarginPerSample)})
	if err != nil {
		return nil, fmt.Errorf("squigglefilter: %w", err)
	}
	return &CascadeSession{cp: cp, s: s}, nil
}

// Close releases the cascade's persistent coarse-tier workers. Call it
// when the panel is done serving reads; it is idempotent, and sessions
// still in flight complete (with less parallelism).
func (cp *CascadePanel) Close() { cp.cascade.Close() }

// Feed delivers a chunk of raw samples and returns the panel verdict so
// far plus whether the read is decided. Before the coarse tier commits,
// every target reports Continue.
func (cs *CascadeSession) Feed(chunk []int16) (PanelVerdict, bool) {
	r, done := cs.s.Feed(chunk)
	return cs.cp.exact.verdictFrom(r), done
}

// Finalize signals that the read ended; a read shorter than the coarse
// prefix runs the coarse tier on whatever arrived, then the survivors
// decide on the full buffered signal. Finalize is idempotent.
func (cs *CascadeSession) Finalize() PanelVerdict {
	return cs.cp.exact.verdictFrom(cs.s.Finalize())
}

// Stream feeds a whole read in chunkSamples-sized deliveries (<= 0 feeds
// it at once), stopping once every surviving target decided, then
// finalizes. The returned bool reports whether the cascade decided before
// the signal ended.
func (cs *CascadeSession) Stream(samples []int16, chunkSamples int) (PanelVerdict, bool) {
	r, decided := cs.s.Stream(samples, chunkSamples)
	return cs.cp.exact.verdictFrom(r), decided
}

// Decided reports whether every surviving target has decided or been
// pruned.
func (cs *CascadeSession) Decided() bool { return cs.s.Decided() }

// SamplesFed returns the raw samples delivered so far.
func (cs *CascadeSession) SamplesFed() int { return cs.s.SamplesFed() }

// Survivors returns the panel indices the coarse tier kept (ascending),
// or nil before it has committed.
func (cs *CascadeSession) Survivors() []int { return cs.s.Survivors() }

// DPSamples returns the raw samples that entered exact-tier DP across the
// survivors — directly comparable to PanelSession.DPSamples on the full
// panel.
func (cs *CascadeSession) DPSamples() int64 { return cs.s.DPSamples() }

// Err reports why the session stopped without deciding: non-nil exactly
// when the session's context was cancelled while a tier waited for
// back-end instances.
func (cs *CascadeSession) Err() error { return cs.s.Err() }

// CoarseDPSamples returns the decimated samples the coarse tier actually
// scored, summed over targets (zero when TopK covered the panel).
// Targets the admissible bound abandoned early contribute only the
// samples consumed before their bound fired.
func (cs *CascadeSession) CoarseDPSamples() int64 { return cs.s.CoarseDPSamples() }

// CoarseDPCells returns the coarse DP cells actually computed — compare
// against targets × hypotheses × (decimated prefix × decimated reference)
// for the exhaustive coarse tier's cell count.
func (cs *CascadeSession) CoarseDPCells() int64 { return cs.s.CoarseDPCells() }

// CoarsePruned returns how many per-target coarse scorings the admissible
// lower bound abandoned before the final row, across all dwell
// hypotheses; CoarseScorings is the denominator.
func (cs *CascadeSession) CoarsePruned() int64 { return cs.s.CoarsePruned() }

// CoarseScorings returns how many per-target coarse scorings the coarse
// tier attempted (targets × dwell hypotheses).
func (cs *CascadeSession) CoarseScorings() int64 { return cs.s.CoarseScorings() }

// DPCells returns the total DP cells computed across both tiers — the
// apples-to-apples work metric against an exact panel, whose per-read
// cells are its DPSamples × each target's reference length.
func (cs *CascadeSession) DPCells() int64 { return cs.s.DPCells() }

// CascadeBatch groups up to Lanes concurrent sessions into shared
// coarse passes — the inter-read batched coarse tier. Sessions opened
// through it pend when their buffers cross the coarse prefix; the
// crossing that fills the batch (or an explicit Flush, or the first
// pending session to Finalize) promotes the whole group in one batched
// pass that advances every pending read's dwell hypotheses through each
// reference with the interleaved multi-query kernel, one scheduler
// dispatch per (reference, batch). Survivor sets and verdicts are
// identical to ungrouped sessions on the same reads. Drive a group's
// sessions from one goroutine: a flush promotes and replays every
// pending lane on the flushing goroutine.
type CascadeBatch struct {
	cp *CascadePanel
	b  *engine.CascadeBatch
}

// NewBatch starts an inter-read batch group of the given lane count
// (the interleave width and flush threshold, 1..4).
func (cp *CascadePanel) NewBatch(lanes int) (*CascadeBatch, error) {
	b, err := cp.cascade.NewBatch(lanes)
	if err != nil {
		return nil, fmt.Errorf("squigglefilter: %w", err)
	}
	return &CascadeBatch{cp: cp, b: b}, nil
}

// Lanes returns the batch width.
func (cb *CascadeBatch) Lanes() int { return cb.b.Lanes() }

// Pending returns how many sessions are pending a flush.
func (cb *CascadeBatch) Pending() int { return cb.b.Pending() }

// Flush promotes every pending session now, on a partial batch — for
// drivers that know no more reads are coming soon.
func (cb *CascadeBatch) Flush() error { return cb.b.Flush() }

// NewSession starts an incremental cascade classification of one read
// that promotes through this batch group.
func (cb *CascadeBatch) NewSession(prune PrunePolicy) (*CascadeSession, error) {
	return cb.NewSessionContext(context.Background(), prune)
}

// NewSessionContext is NewSession bound to a context. The context of
// whichever session triggers a flush governs the whole batched pass:
// cancelling it mid-flush aborts every pending lane (the batch shares
// fate, exactly like the lanes of one hardware sweep).
func (cb *CascadeBatch) NewSessionContext(ctx context.Context, prune PrunePolicy) (*CascadeSession, error) {
	s, err := cb.b.NewSessionContext(ctx, engine.PrunePolicy{Enabled: prune.Enabled, MarginPerSample: int64(prune.MarginPerSample)})
	if err != nil {
		return nil, fmt.Errorf("squigglefilter: %w", err)
	}
	return &CascadeSession{cp: cb.cp, s: s}, nil
}

// Stream classifies one read through a fresh cascade session in
// chunkSamples-sized deliveries under the given pruning policy.
func (cp *CascadePanel) Stream(samples []int16, chunkSamples int, prune PrunePolicy) (PanelVerdict, bool, error) {
	sess, err := cp.NewSession(prune)
	if err != nil {
		return PanelVerdict{}, false, err
	}
	v, decided := sess.Stream(samples, chunkSamples)
	return v, decided, nil
}
